(* Tests for the logic substrate: terms, atoms, substitutions, clauses,
   θ-subsumption, lgg, evaluation, minimization, rewriting. *)

open Castor_relational
open Castor_logic
open Helpers

let v s = Term.Var s

let k s = Term.Const (Value.str s)

let atom r args = Atom.make r args

let cl h b = Clause.make h b

(* ------------------------------ terms ------------------------------ *)

let term_suite =
  [
    tc "vars vs consts" (fun () ->
        check Alcotest.bool "var" true (Term.is_var (v "x"));
        check Alcotest.bool "const" true (Term.is_const (k "a")));
    tc "atom vars in order" (fun () ->
        let a = atom "p" [ v "x"; k "a"; v "y"; v "x" ] in
        check Alcotest.(list string) "vars" [ "x"; "y"; "x" ] (Atom.vars a));
    tc "atom constants" (fun () ->
        let a = atom "p" [ v "x"; k "a"; k "b" ] in
        check Alcotest.(list string) "consts" [ "a"; "b" ]
          (List.map Value.to_string (Atom.constants a)));
    tc "ground atom to tuple" (fun () ->
        let a = atom "p" [ k "a"; k "b" ] in
        check Alcotest.bool "ground" true (Atom.is_ground a);
        check Alcotest.int "arity" 2 (Tuple.arity (Atom.to_tuple a)));
  ]

(* --------------------------- substitution -------------------------- *)

let subst_suite =
  [
    tc "match_atom binds variables" (fun () ->
        let pat = atom "p" [ v "x"; v "y" ] in
        let tgt = atom "p" [ k "a"; k "b" ] in
        match Subst.match_atom Subst.empty pat tgt with
        | None -> Alcotest.fail "should match"
        | Some s ->
            check Alcotest.bool "x->a" true
              (Term.equal (Subst.apply_term s (v "x")) (k "a")));
    tc "match_atom respects repeated variables" (fun () ->
        let pat = atom "p" [ v "x"; v "x" ] in
        check Alcotest.bool "same ok" true
          (Subst.match_atom Subst.empty pat (atom "p" [ k "a"; k "a" ]) <> None);
        check Alcotest.bool "diff fails" true
          (Subst.match_atom Subst.empty pat (atom "p" [ k "a"; k "b" ]) = None));
    tc "constants only match themselves" (fun () ->
        let pat = atom "p" [ k "a" ] in
        check Alcotest.bool "same" true
          (Subst.match_atom Subst.empty pat (atom "p" [ k "a" ]) <> None);
        check Alcotest.bool "diff" true
          (Subst.match_atom Subst.empty pat (atom "p" [ k "b" ]) = None));
    tc "apply_atom substitutes" (fun () ->
        let s = Subst.of_list [ ("x", k "a") ] in
        let a = Subst.apply_atom s (atom "p" [ v "x"; v "y" ]) in
        check Alcotest.string "applied" "p(a,y)" (Atom.to_string a));
  ]

(* ----------------------------- clauses ----------------------------- *)

let clause_suite =
  [
    tc "variables in order of first occurrence" (fun () ->
        let c = cl (atom "t" [ v "x" ]) [ atom "p" [ v "y"; v "x" ]; atom "q" [ v "z"; v "y" ] ] in
        check Alcotest.(list string) "vars" [ "x"; "y"; "z" ] (Clause.variables c));
    tc "is_safe" (fun () ->
        let safe = cl (atom "t" [ v "x" ]) [ atom "p" [ v "x"; v "y" ] ] in
        let unsafe = cl (atom "t" [ v "x" ]) [ atom "p" [ v "y"; v "z" ] ] in
        check Alcotest.bool "safe" true (Clause.is_safe safe);
        check Alcotest.bool "unsafe" false (Clause.is_safe unsafe));
    tc "head_connected drops islands" (fun () ->
        let c =
          cl (atom "t" [ v "x" ])
            [ atom "p" [ v "x"; v "y" ]; atom "q" [ v "z"; v "w" ]; atom "p" [ v "y"; v "u" ] ]
        in
        let c' = Clause.head_connected c in
        check Alcotest.int "two literals kept" 2 (Clause.length c'));
    tc "variabilize maps constants consistently" (fun () ->
        let c = cl (atom "t" [ k "a" ]) [ atom "p" [ k "a"; k "b" ]; atom "q" [ k "b"; k "c" ] ] in
        let c', table = Clause.variabilize c in
        check Alcotest.int "three distinct vars" 3 (Value.Map.cardinal table);
        check Alcotest.int "same length" 2 (Clause.length c');
        (* shared constant b becomes the same variable in both literals *)
        match c'.Clause.body with
        | [ a1; a2 ] ->
            check Alcotest.bool "b consistent" true
              (Term.equal a1.Atom.args.(1) a2.Atom.args.(0))
        | _ -> Alcotest.fail "bad body");
    tc "dedup_body removes duplicates" (fun () ->
        let c = cl (atom "t" [ v "x" ]) [ atom "p" [ v "x"; v "y" ]; atom "p" [ v "x"; v "y" ] ] in
        check Alcotest.int "one" 1 (Clause.length (Clause.dedup_body c)));
    qt ~count:60 "head_connected preserves safety of safe clauses" clause_gen (fun c ->
        let c' = Clause.head_connected c in
        (not (Clause.is_safe c)) || Clause.is_safe c');
  ]

(* ---------------------------- subsumption --------------------------- *)

let subsume_suite =
  [
    tc "renaming subsumes" (fun () ->
        let c1 = cl (atom "t" [ v "x" ]) [ atom "p" [ v "x"; v "y" ] ] in
        let c2 = cl (atom "t" [ v "a" ]) [ atom "p" [ v "a"; v "b" ] ] in
        check Alcotest.bool "c1 <= c2" true (Subsume.subsumes c1 c2);
        check Alcotest.bool "c2 <= c1" true (Subsume.subsumes c2 c1));
    tc "generalization subsumes specialization" (fun () ->
        let gen = cl (atom "t" [ v "x" ]) [ atom "p" [ v "x"; v "y" ] ] in
        let spec = cl (atom "t" [ v "x" ]) [ atom "p" [ v "x"; k "a" ]; atom "q" [ v "x"; v "z" ] ] in
        check Alcotest.bool "gen subsumes spec" true (Subsume.subsumes gen spec);
        check Alcotest.bool "spec not subsumes gen" false (Subsume.subsumes spec gen));
    tc "head mismatch fails" (fun () ->
        let c1 = cl (atom "t" [ k "a" ]) [] in
        let c2 = cl (atom "t" [ k "b" ]) [] in
        check Alcotest.bool "no" false (Subsume.subsumes c1 c2));
    tc "shared variable forces consistent mapping" (fun () ->
        let c = cl (atom "t" [ v "x" ]) [ atom "p" [ v "x"; v "y" ]; atom "q" [ v "y"; v "z" ] ] in
        let d1 =
          cl (atom "t" [ k "a" ]) [ atom "p" [ k "a"; k "b" ]; atom "q" [ k "b"; k "c" ] ]
        in
        let d2 =
          cl (atom "t" [ k "a" ]) [ atom "p" [ k "a"; k "b" ]; atom "q" [ k "x" ; k "c" ] ]
        in
        check Alcotest.bool "chained yes" true (Subsume.subsumes c d1);
        check Alcotest.bool "broken chain no" false (Subsume.subsumes c d2));
    tc "subsuming_subst returns a witness" (fun () ->
        let c = cl (atom "t" [ v "x" ]) [ atom "p" [ v "x"; v "y" ] ] in
        let d = cl (atom "t" [ k "a" ]) [ atom "p" [ k "a"; k "b" ] ] in
        match Subsume.subsuming_subst c d with
        | None -> Alcotest.fail "expected witness"
        | Some s ->
            let applied = Clause.apply_subst s c in
            check Alcotest.bool "image inside d" true
              (List.for_all
                 (fun lit -> List.exists (Atom.equal lit) d.Clause.body)
                 applied.Clause.body));
    qt ~count:300 "optimized engine agrees with naive engine"
      QCheck2.Gen.(tup2 clause_gen ground_clause_gen)
      (fun (c, d) -> Subsume.subsumes c d = Subsume.subsumes_naive c d);
    qt ~count:100 "subsumption is reflexive" clause_gen (fun c ->
        Subsume.subsumes c c);
    qt ~count:100 "ground clauses subsume themselves" ground_clause_gen (fun c ->
        Subsume.subsumes c c);
    qt ~count:100 "prefix clauses subsume extensions" ground_clause_gen (fun c ->
        match c.Clause.body with
        | [] -> true
        | _ :: rest -> Subsume.subsumes { c with Clause.body = rest } c);
  ]

(* -------------------------------- lgg ------------------------------- *)

let lgg_suite =
  [
    tc "lgg of identical clause is equivalent" (fun () ->
        let c = cl (atom "t" [ k "a" ]) [ atom "p" [ k "a"; k "b" ] ] in
        match Lgg.clauses c c with
        | None -> Alcotest.fail "compatible heads"
        | Some g -> check Alcotest.bool "equivalent" true (Subsume.equivalent g c));
    tc "lgg generalizes differing constants to one variable" (fun () ->
        let c1 = cl (atom "t" [ k "a" ]) [ atom "p" [ k "a"; k "b" ] ] in
        let c2 = cl (atom "t" [ k "c" ]) [ atom "p" [ k "c"; k "d" ] ] in
        match Lgg.clauses c1 c2 with
        | None -> Alcotest.fail "compatible"
        | Some g ->
            check Alcotest.bool "subsumes c1" true (Subsume.subsumes g c1);
            check Alcotest.bool "subsumes c2" true (Subsume.subsumes g c2);
            check Alcotest.bool "head var" true
              (Term.is_var g.Clause.head.Atom.args.(0)));
    tc "incompatible heads give None" (fun () ->
        let c1 = cl (atom "t" [ k "a" ]) [] in
        let c2 = cl (atom "u" [ k "a" ]) [] in
        check Alcotest.bool "none" true (Lgg.clauses c1 c2 = None));
    tc "shared pairs map to the same variable" (fun () ->
        (* lgg(p(a,a), p(b,b)) = p(X,X), not p(X,Y) *)
        let c1 = cl (atom "t" [ k "a" ]) [ atom "p" [ k "a"; k "a" ] ] in
        let c2 = cl (atom "t" [ k "b" ]) [ atom "p" [ k "b"; k "b" ] ] in
        match Lgg.clauses c1 c2 with
        | Some g -> (
            match g.Clause.body with
            | [ a ] ->
                check Alcotest.bool "same var" true
                  (Term.equal a.Atom.args.(0) a.Atom.args.(1))
            | _ -> Alcotest.fail "one literal")
        | None -> Alcotest.fail "compatible");
    qt ~count:150 "lgg subsumes both inputs"
      QCheck2.Gen.(tup2 ground_clause_gen ground_clause_gen)
      (fun (c1, c2) ->
        match Lgg.clauses c1 c2 with
        | None -> true
        | Some g ->
            (* head-connectedness pruning may drop literals, which only
               makes g more general *)
            Subsume.subsumes g c1 && Subsume.subsumes g c2);
  ]

(* ---------------------------- evaluation ---------------------------- *)

let eval_suite =
  let inst =
    let inst = Instance.create abc_schema in
    List.iter
      (fun (a, b, c) ->
        Instance.add_list inst "r" [ Value.str a; Value.str b; Value.str c ])
      [ ("a1", "b1", "c1"); ("a2", "b1", "c2"); ("a3", "b2", "c1") ];
    inst
  in
  [
    tc "covers finds a satisfying binding" (fun () ->
        let c =
          cl (atom "t" [ v "x" ]) [ atom "r" [ v "x"; k "b1"; v "z" ] ]
        in
        check Alcotest.bool "a1 covered" true
          (Eval.covers inst c (atom "t" [ k "a1" ]));
        check Alcotest.bool "a3 not covered" false
          (Eval.covers inst c (atom "t" [ k "a3" ])));
    tc "answers enumerates distinct heads" (fun () ->
        let c = cl (atom "t" [ v "x" ]) [ atom "r" [ v "x"; v "y"; k "c1" ] ] in
        check Alcotest.int "two answers" 2 (Tuple.Set.cardinal (Eval.answers inst c)));
    tc "join across literals" (fun () ->
        (* pairs sharing the same b *)
        let c =
          cl (atom "t" [ v "x"; v "y" ])
            [ atom "r" [ v "x"; v "b"; v "c1" ]; atom "r" [ v "y"; v "b"; v "c2" ] ]
        in
        let ans = Eval.answers inst c in
        check Alcotest.bool "(a1,a2) found" true
          (Tuple.Set.mem (Tuple.of_list [ Value.str "a1"; Value.str "a2" ]) ans));
    tc "definition_covers over multiple clauses" (fun () ->
        let d =
          {
            Clause.target = "t";
            clauses =
              [
                cl (atom "t" [ v "x" ]) [ atom "r" [ v "x"; k "b2"; v "z" ] ];
                cl (atom "t" [ v "x" ]) [ atom "r" [ v "x"; v "y"; k "c2" ] ];
              ];
          }
        in
        check Alcotest.bool "a2 by clause 2" true
          (Eval.definition_covers inst d (atom "t" [ k "a2" ]));
        check Alcotest.bool "a3 by clause 1" true
          (Eval.definition_covers inst d (atom "t" [ k "a3" ]));
        check Alcotest.bool "a1 uncovered" false
          (Eval.definition_covers inst d (atom "t" [ k "a1" ])));
    tc "unsafe clause rejected by answers" (fun () ->
        let c = cl (atom "t" [ v "x"; v "free" ]) [ atom "r" [ v "x"; v "y"; v "z" ] ] in
        Alcotest.check_raises "invalid"
          (Invalid_argument "Eval.answers: unsafe clause (unbound head variable)")
          (fun () -> ignore (Eval.answers inst c)));
  ]

(* --------------------------- minimization --------------------------- *)

let minimize_suite =
  [
    tc "absorbed duplicate literal removed" (fun () ->
        (* p(x,y), p(x,z) with z private: second literal absorbed *)
        let c =
          cl (atom "t" [ v "x" ]) [ atom "p" [ v "x"; v "y" ]; atom "p" [ v "x"; v "z" ]; atom "q" [ v "y"; v "w" ] ]
        in
        let r = Minimize.reduce c in
        check Alcotest.int "two literals" 2 (Clause.length r);
        check Alcotest.bool "equivalent" true (Subsume.equivalent c r));
    tc "essential literals survive" (fun () ->
        let c =
          cl (atom "t" [ v "x" ]) [ atom "p" [ v "x"; v "y" ]; atom "q" [ v "y"; v "z" ] ]
        in
        check Alcotest.int "unchanged" 2 (Clause.length (Minimize.reduce c)));
    tc "exact tier reduces chains the absorbed rule misses" (fun () ->
        (* p(x,y1),q(y1,z1),p(x,y2),q(y2,z2): whole second chain redundant *)
        let c =
          cl (atom "t" [ v "x" ])
            [
              atom "p" [ v "x"; v "y1" ]; atom "q" [ v "y1"; v "z1" ];
              atom "p" [ v "x"; v "y2" ]; atom "q" [ v "y2"; v "z2" ];
            ]
        in
        let r = Minimize.reduce ~exact_below:40 c in
        check Alcotest.int "chain folded" 2 (Clause.length r);
        check Alcotest.bool "equivalent" true (Subsume.equivalent c r));
    qt ~count:100 "reduce preserves θ-equivalence" clause_gen (fun c ->
        let r = Minimize.reduce c in
        Subsume.equivalent c r);
    qt ~count:100 "reduce never grows the clause" clause_gen (fun c ->
        Clause.length (Minimize.reduce c) <= Clause.length c);
  ]

(* ----------------------------- rewriting ---------------------------- *)

let rewrite_suite =
  [
    tc "decomposition direction splits literals" (fun () ->
        let c = cl (atom "t" [ v "x" ]) [ atom "r" [ v "x"; v "y"; v "z" ] ] in
        let c' = Rewrite.clause abc_schema abc_decomposition c in
        check Alcotest.int "two part literals" 2 (Clause.length c');
        check Alcotest.(list string) "relations" [ "r1"; "r2" ]
          (List.map (fun (a : Atom.t) -> a.Atom.rel) c'.Clause.body));
    tc "composition direction merges with fresh variables" (fun () ->
        let s = Transform.apply_schema abc_schema abc_decomposition in
        let c = cl (atom "t" [ v "x" ]) [ atom "r1" [ v "x"; v "y" ] ] in
        let c' =
          Rewrite.clause s
            [ Transform.Compose { parts = [ "r1"; "r2" ]; into = "r" } ]
            c
        in
        (match c'.Clause.body with
        | [ a ] ->
            check Alcotest.string "relation" "r" a.Atom.rel;
            check Alcotest.int "arity 3" 3 (Atom.arity a);
            check Alcotest.bool "fresh last var" true (Term.is_var a.Atom.args.(2))
        | _ -> Alcotest.fail "one literal expected"));
    tc "δτ preserves results over transformed instances (Prop 3.7)" (fun () ->
        let inst = abc_instance () in
        let j = Transform.apply_instance inst abc_decomposition in
        (* query over the base schema *)
        let h = cl (atom "t" [ v "x" ]) [ atom "r" [ v "x"; k "b1"; v "z" ] ] in
        let h' = Rewrite.clause abc_schema abc_decomposition h in
        check Alcotest.bool "same answers" true
          (Tuple.Set.equal (Eval.answers inst h) (Eval.answers j h')));
    qt ~count:40 "δτ preserves answers on random instances" abc_instance_gen
      (fun inst ->
        let j = Transform.apply_instance inst abc_decomposition in
        let h =
          cl (atom "t" [ v "x"; v "y" ]) [ atom "r" [ v "x"; v "y"; v "z" ] ]
        in
        let h' = Rewrite.clause abc_schema abc_decomposition h in
        Tuple.Set.equal (Eval.answers inst h) (Eval.answers j h'));
  ]

(* ---------------- differential subsumption battery ---------------- *)

(* Seeded generator of clause pairs, swept over signature shapes. The
   relation name carries its arity ("r2" is binary) so every occurrence
   of a relation is arity-consistent, as the compiled engine assumes.
   Targets mix ground constants with frozen variables (z0, z1): both
   engines treat target variables as constants, and the battery checks
   they do so identically. *)
let differential_suite =
  let pair_gen st ~vars ~consts ~max_arity ~body_len =
    let pattern_term () =
      if Random.State.bool st then
        Term.Var (Printf.sprintf "x%d" (Random.State.int st vars))
      else Term.Const (Value.str (Printf.sprintf "k%d" (Random.State.int st consts)))
    in
    let target_term () =
      if Random.State.int st 100 < 15 then
        Term.Var (Printf.sprintf "z%d" (Random.State.int st 2))
      else
        (* one constant beyond the pattern's pool, so some targets are
           unreachable by any substitution *)
        Term.Const (Value.str (Printf.sprintf "k%d" (Random.State.int st (consts + 1))))
    in
    let random_atom term =
      let a = 1 + Random.State.int st max_arity in
      atom (Printf.sprintf "r%d" a) (List.init a (fun _ -> term ()))
    in
    let c =
      cl
        (atom "t" [ pattern_term () ])
        (List.init (Random.State.int st (body_len + 1)) (fun _ ->
             random_atom pattern_term))
    in
    let d =
      cl
        (atom "t" [ target_term () ])
        (List.init (Random.State.int st (body_len + 3)) (fun _ ->
             random_atom target_term))
    in
    (c, d)
  in
  (* generous budgets on both engines so disagreement can only come
     from the search logic, never from budget mismatch *)
  let agree c d =
    let opt = Subsume.subsumes ~max_steps:50_000_000 c d in
    let naive = Subsume.subsumes_naive ~max_steps:50_000_000 c d in
    if opt <> naive then
      Alcotest.failf "engines disagree (optimized=%b): %s" opt
        (clause_pair_print (c, d));
    (* a budget-limited positive must still be a real subsumption *)
    if Subsume.subsumes ~max_steps:200 c d && not naive then
      Alcotest.failf "budgeted engine invented a subsumption: %s"
        (clause_pair_print (c, d))
  in
  [
    tc "optimized = naive on 600 seeded pairs across signature shapes"
      (fun () ->
        let st = Random.State.make [| 0x5eed |] in
        List.iter
          (fun (vars, consts, max_arity, body_len) ->
            for _ = 1 to 120 do
              let c, d = pair_gen st ~vars ~consts ~max_arity ~body_len in
              agree c d
            done)
          [ (2, 2, 2, 3); (4, 3, 3, 5); (5, 2, 2, 6); (3, 4, 3, 4); (6, 3, 2, 6) ]);
    tc "agreement on head mismatch and empty bodies" (fun () ->
        let c_empty = cl (atom "t" [ v "x" ]) [] in
        let d = cl (atom "t" [ k "a" ]) [ atom "r2" [ k "a"; k "b" ] ] in
        agree c_empty d;
        agree (cl (atom "u" [ v "x" ]) [ atom "r2" [ v "x"; v "y" ] ]) d;
        agree c_empty (cl (atom "t" [ k "a" ]) []);
        agree (cl (atom "t" [ k "b" ]) []) (cl (atom "t" [ k "a" ]) []));
    tc "budget exhaustion reports false and bumps its counter" (fun () ->
        let c = cl (atom "t" [ v "x" ]) [ atom "r2" [ v "x"; v "y" ] ] in
        let d = cl (atom "t" [ k "a" ]) [ atom "r2" [ k "a"; k "b" ] ] in
        let before = Castor_obs.Obs.Counter.value Subsume.c_budget_exhausted in
        (* head matches and arc-consistency passes, so the zero-step
           budget is exhausted on the first search step; restarts are
           disabled to pin the conservative give-up path *)
        check Alcotest.bool "gives up conservatively" false
          (Subsume.subsumes ~max_steps:0 ~max_restarts:0 c d);
        let after = Castor_obs.Obs.Counter.value Subsume.c_budget_exhausted in
        check Alcotest.int "counted exactly once" 1 (after - before);
        check Alcotest.bool "still subsumes with budget" true
          (Subsume.subsumes c d));
    tc "a restart recovers the answer a zero budget gives up on" (fun () ->
        let c = cl (atom "t" [ v "x" ]) [ atom "r2" [ v "x"; v "y" ] ] in
        let d = cl (atom "t" [ k "a" ]) [ atom "r2" [ k "a"; k "b" ] ] in
        let restarts = Subsume.c_restarts in
        let recoveries = Subsume.c_restart_recoveries in
        let r0 = Castor_obs.Obs.Counter.value restarts in
        let v0 = Castor_obs.Obs.Counter.value recoveries in
        (* the zero-step first attempt exhausts; escalation lifts the
           budget to 1, 2, ... until the (trivial) search completes *)
        check Alcotest.bool "recovered" true
          (Subsume.subsumes ~max_steps:0 c d);
        check Alcotest.bool "restarted at least once" true
          (Castor_obs.Obs.Counter.value restarts > r0);
        check Alcotest.int "recovered exactly once" 1
          (Castor_obs.Obs.Counter.value recoveries - v0));
    tc "restart battery: exhaustion-forcing cycles agree with naive engine"
      (fun () ->
        (* cyclic patterns over dense/symmetric edge sets are not
           tree-structured, so arc-consistency cannot decide them and
           the backtracking search really runs; a 2-step budget makes
           the first attempt exhaust on every searched pair, so every
           definitive answer below is produced by a restart *)
        let recoveries = Subsume.c_restart_recoveries in
        let v0 = Castor_obs.Obs.Counter.value recoveries in
        let node i m = k (Printf.sprintf "n%d" (i mod m)) in
        for seed = 0 to 39 do
          let st = Random.State.make [| 0xbeef + seed |] in
          let m = 5 + (seed mod 3) in
          let cyclic = seed mod 2 = 0 in
          let forward =
            (* acyclic targets have no closed walks: unsatisfiable for
               any cycle pattern, and only discoverable by search *)
            List.init (m - 1) (fun i -> atom "p" [ node i m; node (i + 1) m ])
          in
          let edges =
            if cyclic then
              List.init m (fun i -> atom "p" [ node i m; node (i + 1) m ])
              @ List.init m (fun i -> atom "p" [ node (i + 1) m; node i m ])
            else forward
          in
          let chords =
            List.init
              (2 + (seed mod 3))
              (fun _ ->
                let i = Random.State.int st m in
                let j = Random.State.int st m in
                if cyclic then atom "p" [ node i m; node j m ]
                else
                  (* keep acyclic targets acyclic: chords go forward *)
                  let lo = min i j and hi = max i j in
                  if lo = hi then atom "p" [ node lo m; node (lo + 1) m ]
                  else atom "p" [ node lo m; node hi m ])
          in
          let l = 4 + (seed mod 4) in
          let y i = v (Printf.sprintf "y%d" (i mod l)) in
          let c =
            cl (atom "t" [ v "h" ]) (List.init l (fun i -> atom "p" [ y i; y (i + 1) ]))
          in
          let d = cl (atom "t" [ node 0 m ]) (edges @ chords) in
          let opt = Subsume.subsumes ~max_steps:2 ~max_restarts:24 c d in
          let naive = Subsume.subsumes_naive ~max_steps:50_000_000 c d in
          if opt <> naive then
            Alcotest.failf "restart engine disagrees (optimized=%b, seed=%d): %s"
              opt seed
              (clause_pair_print (c, d))
        done;
        check Alcotest.bool "at least one restart recovery" true
          (Castor_obs.Obs.Counter.value recoveries > v0));
  ]

(* ---------------- structural cache key ---------------------------- *)

let canonical_suite =
  (* apply a random variable bijection and a random body permutation *)
  let rename_and_permute st (c : Clause.t) =
    let vars = Clause.variables c in
    let n = List.length vars in
    let perm = Array.init n (fun i -> i) in
    for i = n - 1 downto 1 do
      let j = Random.State.int st (i + 1) in
      let t = perm.(i) in
      perm.(i) <- perm.(j);
      perm.(j) <- t
    done;
    let table = Hashtbl.create 8 in
    List.iteri
      (fun i var -> Hashtbl.add table var (Printf.sprintf "w%d" perm.(i)))
      vars;
    let ren = function
      | Term.Var var -> Term.Var (Hashtbl.find table var)
      | Term.Const _ as t -> t
    in
    let conv (a : Atom.t) = { a with Atom.args = Array.map ren a.Atom.args } in
    let body = Array.of_list (List.map conv c.Clause.body) in
    for i = Array.length body - 1 downto 1 do
      let j = Random.State.int st (i + 1) in
      let t = body.(i) in
      body.(i) <- body.(j);
      body.(j) <- t
    done;
    Clause.make (conv c.Clause.head) (Array.to_list body)
  in
  [
    qt ~count:500 "canonical_key is invariant under renaming + permutation"
      QCheck2.Gen.(pair clause_gen (int_bound 1_000_000))
      (fun (c, seed) ->
        let st = Random.State.make [| seed |] in
        String.equal (Clause.canonical_key c)
          (Clause.canonical_key (rename_and_permute st c)));
    qt ~count:500 "equal canonical keys imply θ-equivalence (soundness)"
      QCheck2.Gen.(pair clause_gen clause_gen)
      (fun (c, d) ->
        (not (String.equal (Clause.canonical_key c) (Clause.canonical_key d)))
        || Subsume.equivalent c d);
    tc "automorphic literal groups key identically across orders" (fun () ->
        (* p(A,B),q(B,B) and p(C,D),q(D,D) are interchangeable; the
           final render sort must make both input orders agree *)
        let lits nm1 nm2 =
          [
            atom "p" [ v (nm1 ^ "a"); v (nm1 ^ "b") ];
            atom "q" [ v (nm1 ^ "b"); v (nm1 ^ "b") ];
            atom "p" [ v (nm2 ^ "a"); v (nm2 ^ "b") ];
            atom "q" [ v (nm2 ^ "b"); v (nm2 ^ "b") ];
          ]
        in
        let c1 = cl (atom "t" [ k "a" ]) (lits "u" "v") in
        let c2 = cl (atom "t" [ k "a" ]) (lits "v" "u") in
        check Alcotest.string "same key" (Clause.canonical_key c1)
          (Clause.canonical_key c2));
    tc "distinct structures get distinct keys" (fun () ->
        let c1 = cl (atom "t" [ v "x" ]) [ atom "p" [ v "x"; v "y" ] ] in
        let c2 = cl (atom "t" [ v "x" ]) [ atom "p" [ v "x"; v "x" ] ] in
        check Alcotest.bool "different" false
          (String.equal (Clause.canonical_key c1) (Clause.canonical_key c2)));
  ]

let budget_suite =
  [
    tc "exhausted budget reports non-subsumption, generous budget succeeds"
      (fun () ->
        (* a chain pattern over a dense target forces real search *)
        let var i = v (Printf.sprintf "y%d" i) in
        let body = List.init 6 (fun i -> atom "p" [ var i; var (i + 1) ]) in
        let c = cl (atom "t" [ var 0 ]) body in
        let target_body =
          List.concat_map
            (fun i ->
              List.map
                (fun j -> atom "p" [ k (Printf.sprintf "n%d" i); k (Printf.sprintf "n%d" j) ])
                [ (i + 1) mod 5; (i + 2) mod 5 ])
            [ 0; 1; 2; 3; 4 ]
        in
        let d = cl (atom "t" [ k "n0" ]) target_body in
        check Alcotest.bool "succeeds with budget" true
          (Subsume.subsumes ~max_steps:100_000 c d);
        (* with a one-step budget and restarts disabled the engine
           gives up conservatively *)
        check Alcotest.bool "fails with tiny budget" false
          (Subsume.subsumes ~max_steps:1 ~max_restarts:0 c d);
        (* with restarts enabled the escalating budget recovers it *)
        check Alcotest.bool "restarts recover the tiny budget" true
          (Subsume.subsumes ~max_steps:1 ~max_restarts:24 c d));
    tc "budget exhaustion is conservative (never reports false positives)"
      (fun () ->
        let c = cl (atom "t" [ v "x" ]) [ atom "p" [ v "x"; k "zzz" ] ] in
        let d = cl (atom "t" [ k "a" ]) [ atom "p" [ k "a"; k "b" ] ] in
        check Alcotest.bool "no" false (Subsume.subsumes ~max_steps:1 c d));
  ]

let suite =
  term_suite @ subst_suite @ clause_suite @ subsume_suite @ differential_suite
  @ canonical_suite @ lgg_suite @ eval_suite @ minimize_suite @ rewrite_suite
  @ budget_suite
