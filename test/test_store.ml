(* Sharded store and delta-maintained secondary indexes: random
   add/remove interleavings must leave both the flat Instance index and
   the sharded Store indexes identical to a from-scratch rebuild, and
   every access path must agree with a naive scan. *)

open Castor_relational
open Helpers

let v i = Value.str (Printf.sprintf "v%d" i)

(* a deliberately small value space so adds collide and removes hit *)
let tuple3_gen =
  QCheck2.Gen.(
    map
      (fun (a, b, c) -> Tuple.of_list [ v a; v b; v c ])
      (triple (int_bound 5) (int_bound 5) (int_bound 5)))

let ops_gen = QCheck2.Gen.(list_size (int_range 0 80) (pair bool tuple3_gen))

let replay_model ops =
  List.fold_left
    (fun s (add, tu) ->
      if add then Tuple.Set.add tu s else Tuple.Set.remove tu s)
    Tuple.Set.empty ops

let sorted l = List.sort Tuple.compare l

let print_ops ops =
  String.concat "; "
    (List.map
       (fun (add, tu) ->
         (if add then "+" else "-") ^ Fmt.str "%a" Tuple.pp tu)
       ops)

let instance_suite =
  [
    tc "Instance.remove prunes every column's index bucket" (fun () ->
        let inst = Instance.create abc_schema in
        let t1 = Tuple.of_list [ v 0; v 1; v 2 ] in
        let t2 = Tuple.of_list [ v 0; v 3; v 2 ] in
        Instance.add_tuple inst "r" t1;
        Instance.add_tuple inst "r" t2;
        check Alcotest.bool "removed" true (Instance.remove_tuple inst "r" t1);
        (* all three columns of t1 must be gone from the index; t2 stays *)
        check Alcotest.int "col0 keeps t2" 1
          (List.length (Instance.find inst "r" 0 (v 0)));
        check Alcotest.int "col1 bucket dropped" 0
          (List.length (Instance.find inst "r" 1 (v 1)));
        check Alcotest.int "col2 keeps t2" 1
          (List.length (Instance.find inst "r" 2 (v 2)));
        check Alcotest.bool "index consistent" true (Instance.index_consistent inst));
    tc "Instance.remove of an absent tuple is a no-op" (fun () ->
        let inst = Instance.create abc_schema in
        let t1 = Tuple.of_list [ v 0; v 1; v 2 ] in
        check Alcotest.bool "absent" false (Instance.remove_tuple inst "r" t1);
        check Alcotest.bool "consistent" true (Instance.index_consistent inst));
    qt ~count:200 "random add/remove interleaving == from-scratch rebuild"
      ops_gen
      (fun ops ->
        let inst = Instance.create abc_schema in
        List.iter
          (fun (add, tu) ->
            if add then Instance.add_tuple inst "r" tu
            else ignore (Instance.remove_tuple inst "r" tu))
          ops;
        let model = Tuple.Set.elements (replay_model ops) in
        Instance.index_consistent inst
        && List.equal Tuple.equal (sorted (Instance.tuples inst "r")) (sorted model));
  ]

let shards_gen = QCheck2.Gen.int_range 1 5

let store_suite =
  [
    qt ~count:200 "Store interleaving: indexes == rebuild, every path agrees"
      QCheck2.Gen.(pair shards_gen ops_gen)
      (fun (shards, ops) ->
        let st = Store.create ~shards [ ("r", 3) ] in
        List.iter
          (fun (add, tu) ->
            if add then ignore (Store.add_tuple st "r" tu)
            else ignore (Store.remove_tuple st "r" tu))
          ops;
        let model = Tuple.Set.elements (replay_model ops) in
        Store.index_consistent st
        && List.equal Tuple.equal (sorted (Store.tuples st "r")) (sorted model)
        && (* indexed find == scan filter, on key and non-key columns *)
        List.for_all
          (fun pos ->
            List.for_all
              (fun i ->
                List.equal Tuple.equal
                  (sorted (Store.find st "r" pos (v i)))
                  (sorted
                     (List.filter (fun tu -> Value.equal tu.(pos) (v i)) model)))
              [ 0; 1; 2; 3; 4; 5 ])
          [ 0; 1; 2 ]
        && List.for_all
             (fun i ->
               List.equal Tuple.equal
                 (sorted (Store.tuples_containing st "r" (v i)))
                 (sorted
                    (List.filter
                       (fun tu -> Array.exists (fun x -> Value.equal x (v i)) tu)
                       model)))
             [ 0; 1; 2; 3; 4; 5 ]);
    qt ~count:100 "shard count never changes Store.of_instance contents"
      QCheck2.Gen.(pair abc_instance_gen shards_gen)
      (fun (inst, shards) ->
        let st1 = Store.of_instance ~shards:1 inst in
        let stn = Store.of_instance ~shards inst in
        List.equal Tuple.equal
          (sorted (Store.tuples st1 "r"))
          (sorted (Store.tuples stn "r"))
        && Store.index_consistent stn
        && List.for_all
             (fun i ->
               List.equal Tuple.equal
                 (sorted (Store.find st1 "r" 0 (v i)))
                 (sorted (Store.find stn "r" 0 (v i))))
             [ 0; 1; 2; 3; 4 ]);
    tc "rows live on the shard their key hashes to" (fun () ->
        let st = Store.create ~shards:4 [ ("r", 3) ] in
        for i = 0 to 19 do
          ignore (Store.add st "r" (Tuple.of_list [ v i; v (i mod 3); v 0 ]))
        done;
        for s = 0 to Store.n_shards st - 1 do
          List.iter
            (fun (tu : Tuple.t) ->
              check Alcotest.int
                (Fmt.str "shard of %a" Tuple.pp tu)
                s
                (Store.shard_of_value st tu.(0)))
            (Store.shard_tuples st s "r")
        done);
    tc "Store.add is set-semantics and Store.remove returns presence" (fun () ->
        let st = Store.create ~shards:2 [ ("r", 3) ] in
        let tu = Tuple.of_list [ v 0; v 1; v 2 ] in
        check Alcotest.bool "first add" true (Store.add st "r" tu);
        check Alcotest.bool "dup add" false (Store.add st "r" tu);
        check Alcotest.int "one row" 1 (Store.cardinality st "r");
        check Alcotest.bool "remove" true (Store.remove st "r" tu);
        check Alcotest.bool "re-remove" false (Store.remove st "r" tu);
        check Alcotest.bool "consistent" true (Store.index_consistent st));
  ]

(* -------- Backend.spec: the string form carried by CLI flags ------- *)

let spec_suite =
  [
    tc "Backend.spec_of_string parses every documented form" (fun () ->
        let parses s expect =
          check Alcotest.bool s true (Backend.spec_of_string s = expect)
        in
        parses "instance" Backend.Flat;
        parses "flat" Backend.Flat;
        parses "store" (Backend.Sharded Store.default_shards);
        parses "store:1" (Backend.Sharded 1);
        parses "store:4" (Backend.Sharded 4);
        (* whitespace and case are forgiven: these arrive from shells *)
        parses "  Store:2 " (Backend.Sharded 2);
        parses "FLAT" Backend.Flat;
        parses "columnar" Backend.Columnar;
        parses "column" Backend.Columnar;
        parses " Columnar " Backend.Columnar);
    tc "Backend.spec_to_string round-trips through spec_of_string" (fun () ->
        List.iter
          (fun spec ->
            let s = Backend.spec_to_string spec in
            check Alcotest.bool (s ^ " round-trips") true
              (Backend.spec_of_string s = spec))
          [ Backend.Flat; Backend.Sharded 1; Backend.Sharded 4;
            Backend.Sharded 64; Backend.Columnar; Backend.default_spec ]);
    tc "Backend.spec_of_string rejects malformed specs" (fun () ->
        List.iter
          (fun s ->
            match Backend.spec_of_string s with
            | exception Invalid_argument _ -> ()
            | _ -> Alcotest.fail (Printf.sprintf "%S should be rejected" s))
          [ "store:0"; "store:-3"; "store:x"; "store:"; "shard:2"; "postgres"; "" ]);
  ]

(* -------- Columnar backend: planner statistics and interning ------- *)

let all_specs = [ Backend.Flat; Backend.Sharded 3; Backend.Columnar ]

let apply_ops (backend : Backend.t) ops =
  let module B = (val backend) in
  List.iter
    (fun (add, tu) ->
      if add then ignore (B.add "r" tu) else ignore (B.remove "r" tu))
    ops

let model_distinct model pos =
  List.length
    (List.sort_uniq Value.compare
       (List.map (fun (tu : Tuple.t) -> tu.(pos)) model))

let columnar_suite =
  [
    qt ~count:200 "cardinality and distinct_count agree across all backends"
      ops_gen
      (fun ops ->
        let backends =
          List.map (fun spec -> Backend.create spec [ ("r", 3) ]) all_specs
        in
        List.iter (fun b -> apply_ops b ops) backends;
        let model = Tuple.Set.elements (replay_model ops) in
        List.for_all
          (fun b ->
            let module B = (val b : Backend.S) in
            B.cardinality "r" = List.length model
            && List.for_all
                 (fun pos -> B.distinct_count "r" pos = model_distinct model pos)
                 [ 0; 1; 2 ])
          backends);
    qt ~count:100
      "statistics stay exact after every mutation (memo invalidation)" ops_gen
      (fun ops ->
        (* probe the statistics after *each* op: a stale per-generation
           memo (the distinct_count caches) or stale posting lists would
           surface as a disagreement with the replayed model mid-way *)
        List.for_all
          (fun b ->
            let module B = (val b : Backend.S) in
            let model = ref Tuple.Set.empty in
            List.for_all
              (fun (add, tu) ->
                if add then begin
                  ignore (B.add "r" tu);
                  model := Tuple.Set.add tu !model
                end
                else begin
                  ignore (B.remove "r" tu);
                  model := Tuple.Set.remove tu !model
                end;
                let m = Tuple.Set.elements !model in
                B.cardinality "r" = List.length m
                && List.for_all
                     (fun pos -> B.distinct_count "r" pos = model_distinct m pos)
                     [ 0; 1; 2 ])
              ops)
          (List.map (fun spec -> Backend.create spec [ ("r", 3) ]) all_specs));
    qt ~count:200 "intern dictionary round-trips and survives removals" ops_gen
      (fun ops ->
        let c = Columnar.create [ ("r", 3) ] in
        List.iter
          (fun (add, tu) ->
            if add then ignore (Columnar.add c "r" tu)
            else ignore (Columnar.remove c "r" tu))
          ops;
        let added =
          List.filter_map (fun (add, tu) -> if add then Some tu else None) ops
        in
        let seen =
          List.sort_uniq Value.compare
            (List.concat_map Array.to_list added)
        in
        (* every value ever added stays interned — removals tombstone
           rows but never reclaim dictionary ids *)
        List.for_all
          (fun v ->
            match Columnar.intern_id c "r" v with
            | None -> false
            | Some id -> Value.equal v (Columnar.intern_value c "r" id))
          seen
        && Columnar.dictionary_size c "r" = List.length seen
        && Columnar.consistent c);
    qt ~count:200 "columnar access paths agree with the replayed model"
      ops_gen
      (fun ops ->
        let c = Columnar.create [ ("r", 3) ] in
        List.iter
          (fun (add, tu) ->
            if add then ignore (Columnar.add c "r" tu)
            else ignore (Columnar.remove c "r" tu))
          ops;
        let model = Tuple.Set.elements (replay_model ops) in
        Columnar.consistent c
        && List.equal Tuple.equal (sorted (Columnar.tuples c "r")) (sorted model)
        && List.for_all
             (fun pos ->
               List.for_all
                 (fun i ->
                   List.equal Tuple.equal
                     (sorted (Columnar.find c "r" pos (v i)))
                     (sorted
                        (List.filter
                           (fun (tu : Tuple.t) -> Value.equal tu.(pos) (v i))
                           model)))
                 [ 0; 1; 2; 3; 4; 5 ])
             [ 0; 1; 2 ]
        && List.for_all
             (fun i ->
               List.equal Tuple.equal
                 (sorted (Columnar.tuples_containing c "r" (v i)))
                 (sorted
                    (List.filter
                       (fun tu -> Array.exists (fun x -> Value.equal x (v i)) tu)
                       model)))
             [ 0; 1; 2; 3; 4; 5 ]);
  ]

let suite = instance_suite @ store_suite @ spec_suite @ columnar_suite
