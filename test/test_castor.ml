(* Test runner: aggregates per-area suites. *)

let () =
  Alcotest.run "castor"
    [
      ("relational", Test_relational.suite);
      ("store", Test_store.suite);
      ("transform", Test_transform.suite);
      ("logic", Test_logic.suite);
      ("analysis", Test_analysis.suite);
      ("obs", Test_obs.suite);
      ("text", Test_text.suite);
      ("discovery", Test_discovery.suite);
      ("datalog", Test_datalog.suite);
      ("delta", Test_delta.suite);
      ("ilp", Test_ilp.suite);
      ("batch", Test_batch.suite);
      ("learners", Test_learners.suite);
      ("core", Test_core.suite);
      ("qlearn", Test_qlearn.suite);
      ("datasets", Test_datasets.suite);
      ("eval", Test_eval.suite);
      ("independence", Test_independence.suite);
      ("theorems", Test_theorems.suite);
      ("fuzz", Test_fuzz.suite);
    ]
