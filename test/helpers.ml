(* Shared test fixtures and QCheck generators. *)

open Castor_relational
open Castor_logic

let check = Alcotest.check

(* ---------------- one seed to rule the whole suite ---------------- *)

(* Every random choice in the suite — QCheck generation included —
   derives from this seed, so a CI failure reproduces locally by
   exporting the same CASTOR_TEST_SEED. The seed is printed whenever a
   test fails. *)
let test_seed =
  match Sys.getenv_opt "CASTOR_TEST_SEED" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n -> n
      | None ->
          Printf.eprintf "ignoring unparsable CASTOR_TEST_SEED=%S\n%!" s;
          42)
  | None -> 42

(* a fresh deterministic state; [salt] decorrelates independent users *)
let test_rng ?(salt = 0) () = Random.State.make [| test_seed; salt |]

let note_seed_on_failure f () =
  try f ()
  with e ->
    Printf.eprintf "test failed: reproduce with CASTOR_TEST_SEED=%d\n%!" test_seed;
    raise e

let tc name f = Alcotest.test_case name `Quick (note_seed_on_failure f)

let qt ?(count = 100) name gen prop =
  let n, speed, run =
    QCheck_alcotest.to_alcotest ~rand:(test_rng ~salt:99 ())
      (QCheck2.Test.make ~count ~name gen prop)
  in
  (n, speed, note_seed_on_failure run)

(* ---------------- fixed relational fixtures ---------------- *)

(* R(a,b,c) with FD a -> b,c; its decomposition into R1(a,b), R2(a,c) *)
let abc_schema =
  let at = Schema.attribute in
  Schema.make
    ~fds:[ { Schema.fd_rel = "r"; fd_lhs = [ "a" ]; fd_rhs = [ "b"; "c" ] } ]
    [
      Schema.relation "r"
        [ at ~domain:"da" "a"; at ~domain:"db" "b"; at ~domain:"dc" "c" ];
    ]

let abc_decomposition : Transform.t =
  [
    Transform.Decompose
      { rel = "r"; parts = [ ("r1", [ "a"; "b" ]); ("r2", [ "a"; "c" ]) ] };
  ]

(* a deterministic instance of abc_schema satisfying the FD *)
let abc_instance ?(n = 12) () =
  let inst = Instance.create abc_schema in
  for i = 0 to n - 1 do
    Instance.add_list inst "r"
      [
        Value.str (Printf.sprintf "a%d" i);
        Value.str (Printf.sprintf "b%d" (i mod 4));
        Value.str (Printf.sprintf "c%d" (i mod 3));
      ]
  done;
  inst

(* random instances of abc_schema; b and c are functions of a so the
   FD a -> b,c holds by construction *)
let abc_instance_gen =
  QCheck2.Gen.(
    let tuple =
      map
        (fun a ->
          [
            Value.str (Printf.sprintf "a%d" a);
            Value.str (Printf.sprintf "b%d" (a mod 4));
            Value.str (Printf.sprintf "c%d" (a mod 3));
          ])
        (int_bound 30)
    in
    map
      (fun rows ->
        let inst = Instance.create abc_schema in
        List.iter (fun row -> Instance.add_list inst "r" row) rows;
        inst)
      (list_size (int_range 0 25) tuple))

(* ---------------- random clauses over a tiny signature -------- *)

(* relations p/2, q/2, s/1 over variables x0..x4 and constants k0..k2 *)
let term_gen =
  QCheck2.Gen.(
    oneof
      [
        map (fun i -> Term.Var (Printf.sprintf "x%d" i)) (int_bound 4);
        map (fun i -> Term.Const (Value.str (Printf.sprintf "k%d" i))) (int_bound 2);
      ])

let atom_gen =
  QCheck2.Gen.(
    oneof
      [
        map2 (fun t1 t2 -> Atom.make "p" [ t1; t2 ]) term_gen term_gen;
        map2 (fun t1 t2 -> Atom.make "q" [ t1; t2 ]) term_gen term_gen;
        map (fun t -> Atom.make "s" [ t ]) term_gen;
      ])

let clause_gen =
  QCheck2.Gen.(
    map2
      (fun h body -> Clause.make (Atom.make "t" [ h ]) body)
      term_gen
      (list_size (int_range 0 6) atom_gen))

let ground_term_gen =
  QCheck2.Gen.(map (fun i -> Term.Const (Value.str (Printf.sprintf "k%d" i))) (int_bound 5))

let ground_atom_gen =
  QCheck2.Gen.(
    oneof
      [
        map2 (fun t1 t2 -> Atom.make "p" [ t1; t2 ]) ground_term_gen ground_term_gen;
        map2 (fun t1 t2 -> Atom.make "q" [ t1; t2 ]) ground_term_gen ground_term_gen;
        map (fun t -> Atom.make "s" [ t ]) ground_term_gen;
      ])

let ground_clause_gen =
  QCheck2.Gen.(
    map2
      (fun h body -> Clause.make (Atom.make "t" [ h ]) body)
      ground_term_gen
      (list_size (int_range 0 8) ground_atom_gen))

(* substring search, for asserting on error-message contents *)
let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let clause_print c = Clause.to_string c

let clause_pair_print (c, d) = Clause.to_string c ^ "  ///  " ^ Clause.to_string d
