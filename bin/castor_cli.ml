(* castor — command-line interface to the library.

   Subcommands:
     learn      train a learner on a dataset variant and report metrics
     schemas    print a dataset's schema variants, constraints and stats
     transform  demonstrate a composition/decomposition round trip
     oracle     run the A2 query-based learner against a random target *)

open Cmdliner
open Castor_relational
module Clause = Castor_logic.Clause
open Castor_datasets
open Castor_eval

let dataset_of_name = function
  | "uwcse" -> Uwcse.generate ()
  | "hiv" -> Hiv.generate ()
  | "hiv-large" -> Hiv.generate ~config:Hiv.large_config ()
  | "imdb" -> Imdb.generate ()
  | "family" -> Family.generate ()
  | s -> failwith ("unknown dataset " ^ s ^ " (try uwcse|hiv|hiv-large|imdb|family)")

module Learner = Castor_learners.Learner

(* every subcommand resolves learners through the one registry path *)
let algo_of_name ?gate ?domains ?backend name =
  try Algos.of_name ?gate ?domains ?backend name
  with Learner.Unknown_learner s ->
    failwith
      ("unknown algorithm " ^ s ^ " (try "
      ^ String.concat "|" (Learner.names ())
      ^ ")")

let backend_of_string s =
  try Backend.spec_of_string s
  with Invalid_argument m -> failwith m

(* ------------------- shared flag surface ------------------------ *)
(* One parser per flag, shared by every subcommand that accepts it,
   so `--backend`, `--json`, `-o` and `--seed` spell and behave the
   same everywhere. Subcommands that are deterministic still accept
   `--seed` (and ignore it) so sweep scripts can pass a uniform
   argument vector. *)

let json_arg =
  Arg.(value & flag & info [ "json" ] ~doc:"Emit JSON instead of text.")

let out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "o"; "out" ]
        ~doc:"Also write the (JSON) report to $(docv)." ~docv:"FILE")

let seed_arg =
  Arg.(
    value & opt int 17
    & info [ "seed" ]
        ~doc:
          "Random seed for every seeded stage (fold shuffles, variant \
           generation, sampling). Deterministic subcommands accept and \
           ignore it, so scripted sweeps can pass one uniform flag set.")

let backends_arg =
  Arg.(
    value & opt_all string []
    & info [ "backend" ]
        ~doc:
          "Storage backend spec: $(b,instance) (flat, zero-copy), \
           $(b,store)[:$(i,SHARDS)] (hash-partitioned) or $(b,columnar) \
           (interned column store). Repeatable on sweeping subcommands; \
           single-backend subcommands reject repeats. Default: the \
           library's sharded store.")

(* single-backend subcommands go through this validator so a repeated
   --backend fails loudly instead of silently dropping one *)
let one_backend cmd = function
  | [] -> None
  | [ b ] -> Some (backend_of_string b)
  | _ -> failwith (cmd ^ ": pass --backend at most once")

let write_out out doc =
  Option.iter
    (fun path ->
      let oc = open_out path in
      output_string oc doc;
      output_char oc '\n';
      close_out oc)
    out

(* ---------------------------- learn ----------------------------- *)

let dataset_arg =
  Arg.(value & opt string "uwcse" & info [ "d"; "dataset" ] ~doc:"Dataset name.")

let variant_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "s"; "schema" ] ~doc:"Schema variant (default: the base schema).")

let algo_arg =
  Arg.(value & opt string "castor" & info [ "a"; "algo" ] ~doc:"Learning algorithm.")

let folds_arg =
  Arg.(
    value & opt int 0
    & info [ "k"; "folds" ]
        ~doc:"Cross-validation folds; 0 trains on everything and reports training metrics.")

let learn_json ~algo ~dataset ~variant ~folds ~time_s (m : Metrics.t)
    (def : Clause.definition) =
  Printf.sprintf
    {|{"algo":%S,"dataset":%S,"variant":%S,"folds":%d,"precision":%.6f,"recall":%.6f,"time_s":%.3f,"clauses":%d}|}
    algo dataset variant folds m.Metrics.precision m.Metrics.recall time_s
    (List.length def.Clause.clauses)

let learn dataset variant algo folds backends json out seed =
  let backend = one_backend "learn" backends in
  let ds = dataset_of_name dataset in
  let vname = Option.value ~default:(fst (List.hd ds.Dataset.variants)) variant in
  let a = algo_of_name ?backend algo in
  let prep = Experiment.prepare ?backend ds vname in
  let m, def, time_s =
    if folds > 0 then begin
      let row = Experiment.crossval ~seed ~folds prep a in
      (row.Experiment.metrics, row.Experiment.definition, row.Experiment.time_s)
    end
    else begin
      let t0 = Unix.gettimeofday () in
      let def = Experiment.train_full ~seed prep a in
      let dt = Unix.gettimeofday () -. t0 in
      let n_pos = Castor_ilp.Coverage.length prep.Experiment.all_pos in
      let n_neg = Castor_ilp.Coverage.length prep.Experiment.all_neg in
      let m =
        Experiment.test_metrics prep def
          (Array.init n_pos Fun.id, Array.init n_neg Fun.id)
      in
      (m, def, dt)
    end
  in
  let doc =
    learn_json ~algo:a.Experiment.algo_name ~dataset ~variant:vname ~folds
      ~time_s m def
  in
  write_out out doc;
  if json then print_endline doc
  else begin
    if folds > 0 then
      Fmt.pr "%s on %s/%s (%d-fold CV):@." a.Experiment.algo_name dataset vname
        folds
    else
      Fmt.pr "%s on %s/%s (training set, %.2fs):@." a.Experiment.algo_name
        dataset vname time_s;
    Fmt.pr "  precision %.3f  recall %.3f@." m.Metrics.precision
      m.Metrics.recall;
    Fmt.pr "@.definition:@.%a@." Clause.pp_definition def
  end

let learn_cmd =
  Cmd.v
    (Cmd.info "learn" ~doc:"Learn a target relation definition over a schema variant.")
    Term.(
      const learn $ dataset_arg $ variant_arg $ algo_arg $ folds_arg
      $ backends_arg $ json_arg $ out_arg $ seed_arg)

(* --------------------------- schemas ---------------------------- *)

let schemas dataset =
  let ds = dataset_of_name dataset in
  Fmt.pr "dataset %s: %d positive / %d negative examples of %s@." ds.Dataset.name
    (Array.length ds.Dataset.examples.Castor_ilp.Examples.pos)
    (Array.length ds.Dataset.examples.Castor_ilp.Examples.neg)
    ds.Dataset.target.Schema.rname;
  List.iter
    (fun (vname, _) ->
      let v = Dataset.variant_named ds vname in
      Fmt.pr "@.== variant %s (%d tuples) ==@.%a@." vname
        (Instance.size v.Dataset.vinstance)
        Schema.pp v.Dataset.vschema)
    ds.Dataset.variants

let schemas_cmd =
  Cmd.v
    (Cmd.info "schemas" ~doc:"Print a dataset's schema variants and constraints.")
    Term.(const schemas $ dataset_arg)

(* -------------------------- transform --------------------------- *)

let transform dataset =
  let ds = dataset_of_name dataset in
  List.iter
    (fun (vname, tr) ->
      if tr <> [] then begin
        Fmt.pr "@.variant %-14s: %a@." vname Transform.pp tr;
        let ok = Transform.round_trips ds.Dataset.instance tr in
        Fmt.pr "  instance round trip inv(tau(I)) = I: %b@." ok;
        let v = Dataset.variant_named ds vname in
        Fmt.pr "  transformed instance: %d tuples, constraints satisfied: %b@."
          (Instance.size v.Dataset.vinstance)
          (Instance.satisfies_constraints v.Dataset.vinstance)
      end)
    ds.Dataset.variants

let transform_cmd =
  Cmd.v
    (Cmd.info "transform"
       ~doc:"Apply each schema variant's (de)composition and verify invertibility.")
    Term.(const transform $ dataset_arg)

(* ---------------------------- oracle ---------------------------- *)

let oracle n_vars n_clauses seed =
  let ds = Uwcse.generate () in
  let schema = Transform.apply_schema ds.Dataset.schema Uwcse.to_denorm2 in
  let def =
    Castor_qlearn.Gen.random_definition
      ~rng:(Random.State.make [| seed |])
      ~schema ~target_name:"t" ~n_clauses ~n_vars ()
  in
  Fmt.pr "hidden target:@.%a@.@." Clause.pp_definition def;
  let o = Castor_qlearn.Oracle.make def in
  let r = Castor_qlearn.A2.learn ~target_name:"t" o in
  Fmt.pr "A2 result: converged=%b  EQs=%d  MQs=%d@.%a@." r.Castor_qlearn.A2.converged
    r.Castor_qlearn.A2.eqs r.Castor_qlearn.A2.mqs Clause.pp_definition
    r.Castor_qlearn.A2.hypothesis

let oracle_cmd =
  Cmd.v
    (Cmd.info "oracle" ~doc:"Run the A2 query-based learner against a random target.")
    Term.(
      const oracle
      $ Arg.(value & opt int 5 & info [ "vars" ] ~doc:"Variables per clause.")
      $ Arg.(value & opt int 2 & info [ "clauses" ] ~doc:"Clauses in the target.")
      $ seed_arg)

(* ---------------------------- export ---------------------------- *)

let export dataset variant out =
  let ds = dataset_of_name dataset in
  let vname = Option.value ~default:(fst (List.hd ds.Dataset.variants)) variant in
  let v = Dataset.variant_named ds vname in
  let exported =
    {
      ds with
      Dataset.schema = v.Dataset.vschema;
      instance = v.Dataset.vinstance;
      variants = [ ("base", []) ];
    }
  in
  Dataset.export exported out;
  Fmt.pr "wrote %s/{schema,facts,examples}.castor (%d tuples)@." out
    (Instance.size v.Dataset.vinstance)

let export_cmd =
  Cmd.v
    (Cmd.info "export" ~doc:"Write a dataset variant to .castor text files.")
    Term.(
      const export $ dataset_arg $ variant_arg
      $ Arg.(value & opt string "export" & info [ "o"; "out" ] ~doc:"Output directory."))

(* ---------------------------- import ---------------------------- *)

let gate_of_string = function
  | "off" -> `Off
  | "warn" -> `Warn
  | "strict" -> `Strict
  | s -> failwith ("unknown gate " ^ s ^ " (try off|warn|strict)")

let import dir algo gate =
  let ds =
    Dataset.import ~name:(Filename.basename dir) ~gate:(gate_of_string gate) dir
  in
  let a = algo_of_name algo in
  let prep = Experiment.prepare ds "base" in
  let t0 = Unix.gettimeofday () in
  let def = Experiment.train_full prep a in
  let dt = Unix.gettimeofday () -. t0 in
  let n_pos = Castor_ilp.Coverage.length prep.Experiment.all_pos in
  let n_neg = Castor_ilp.Coverage.length prep.Experiment.all_neg in
  let m =
    Experiment.test_metrics prep def
      (Array.init n_pos Fun.id, Array.init n_neg Fun.id)
  in
  Fmt.pr "%s on imported %s (%.2fs): precision %.3f recall %.3f@."
    a.Experiment.algo_name dir dt m.Metrics.precision m.Metrics.recall;
  Fmt.pr "@.%a@." Clause.pp_definition def

let import_cmd =
  Cmd.v
    (Cmd.info "import" ~doc:"Learn from a directory of .castor files.")
    Term.(
      const import
      $ Arg.(value & opt string "export" & info [ "i"; "in" ] ~doc:"Input directory.")
      $ algo_arg
      $ Arg.(
          value & opt string "warn"
          & info [ "gate" ]
              ~doc:
                "Static-analysis gate for the imported files: off, warn or \
                 strict (strict fails the import on errors)."))

(* ------------------------------ sql ------------------------------ *)

let sql dataset variant algo =
  let ds = dataset_of_name dataset in
  let vname = Option.value ~default:(fst (List.hd ds.Dataset.variants)) variant in
  let a = algo_of_name algo in
  let prep = Experiment.prepare ds vname in
  let def = Experiment.train_full prep a in
  match def.Castor_logic.Clause.clauses with
  | [] -> Fmt.pr "-- no definition learned@."
  | _ ->
      Fmt.pr "%s@."
        (Castor_logic.Sql.create_view prep.Experiment.pvariant.Dataset.vschema def)

let sql_cmd =
  Cmd.v
    (Cmd.info "sql" ~doc:"Learn a definition and print it as a SQL view.")
    Term.(const sql $ dataset_arg $ variant_arg $ algo_arg)

(* ----------------------------- stats ----------------------------- *)

let stats dataset variant algo domains json backends out seed =
  let module Obs = Castor_obs.Obs in
  let backend = one_backend "stats" backends in
  let ds = dataset_of_name dataset in
  let vname = Option.value ~default:(fst (List.hd ds.Dataset.variants)) variant in
  let a = algo_of_name ~domains ?backend algo in
  let prep = Experiment.prepare ?backend ds vname in
  Castor_ilp.Coverage.set_domains prep.Experiment.all_pos domains;
  Castor_ilp.Coverage.set_domains prep.Experiment.all_neg domains;
  Obs.reset ();
  let def = Experiment.train_full ~seed prep a in
  write_out out (Obs.to_json ());
  if json then print_endline (Obs.to_json ())
  else begin
    Fmt.pr "%s on %s/%s learned %d clause(s); observability report:@.@."
      a.Experiment.algo_name dataset vname
      (List.length def.Castor_logic.Clause.clauses);
    (* derived hot-path health lines: coverage-cache effectiveness and
       how often the subsumption engine needed restarts *)
    let hits = Obs.Counter.value Castor_ilp.Stats.c_cache_hits in
    let misses = Obs.Counter.value Castor_ilp.Coverage.c_cache_misses in
    let lookups = hits + misses in
    if lookups > 0 then
      Fmt.pr "coverage cache: %d/%d hits (%.1f%%), %d key builds@." hits
        lookups
        (100. *. float_of_int hits /. float_of_int lookups)
        (Obs.Counter.value Castor_ilp.Coverage.c_key_builds);
    let restarts = Obs.Counter.value Castor_logic.Subsume.c_restarts in
    if restarts > 0 then
      Fmt.pr "subsumption restarts: %d (%d recovered definitive answers)@."
        restarts
        (Obs.Counter.value Castor_logic.Subsume.c_restart_recoveries);
    Fmt.pr "@.";
    print_string (Obs.report ())
  end

let stats_cmd =
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Train once and print the Obs observability report (operation \
          counters, span timings, slowest coverage vectors).")
    Term.(
      const stats $ dataset_arg $ variant_arg $ algo_arg
      $ Arg.(
          value & opt int 1
          & info [ "domains" ] ~doc:"Parallel coverage-test domains.")
      $ json_arg $ backends_arg $ out_arg $ seed_arg)

(* ---------------------------- discover --------------------------- *)

let discover dataset =
  let ds = dataset_of_name dataset in
  let inst = ds.Dataset.instance in
  Fmt.pr "discovered unary inclusion dependencies:@.";
  List.iter
    (fun ind -> Fmt.pr "  %a@." Schema.pp_ind ind)
    (Discovery.unary_inds inst);
  Fmt.pr "@.discovered functional dependencies (LHS ≤ 2):@.";
  List.iter
    (fun (r : Schema.relation) ->
      List.iter
        (fun (fd : Schema.fd) ->
          Fmt.pr "  %s: %a -> %a@." fd.Schema.fd_rel
            Fmt.(list ~sep:comma string)
            fd.Schema.fd_lhs
            Fmt.(list ~sep:comma string)
            fd.Schema.fd_rhs)
        (Discovery.fds inst r.Schema.rname))
    ds.Dataset.schema.Schema.relations;
  Fmt.pr "@.composition proposals (lossless by declared INDs):@.";
  List.iter
    (fun op -> Fmt.pr "  %a@." Transform.pp_op op)
    (Normalize.compose_advisor ds.Dataset.schema);
  Fmt.pr "@.BCNF decomposition proposals (by declared FDs):@.";
  List.iter
    (fun (r : Schema.relation) ->
      match Normalize.bcnf_decompose ds.Dataset.schema r.Schema.rname with
      | Some op -> Fmt.pr "  %a@." Transform.pp_op op
      | None -> ())
    ds.Dataset.schema.Schema.relations

let discover_cmd =
  Cmd.v
    (Cmd.info "discover"
       ~doc:"Discover dependencies in a dataset and propose (de)normalizations.")
    Term.(const discover $ dataset_arg)

(* ---------------------------- analyze ---------------------------- *)

module Diagnostic = Castor_analysis.Diagnostic
module Analyze = Castor_analysis.Analyze

let read_file f =
  let ic = open_in_bin f in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let print_rule_catalog () =
  Fmt.pr "%-32s %-8s %s@." "RULE" "LEVEL" "DESCRIPTION";
  List.iter
    (fun (r : Analyze.rule) ->
      Fmt.pr "%-32s %-8s %s@." r.Analyze.id
        (Diagnostic.severity_string r.Analyze.severity)
        r.Analyze.doc)
    Analyze.rules

(* shared tail of both analyze paths: emit, optionally persist, and
   set the exit status from the error count *)
let emit_diagnostics groups json out =
  let all = List.concat_map snd groups in
  write_out out (Diagnostic.to_json all);
  if json then print_endline (Diagnostic.to_json all)
  else begin
    List.iter
      (fun (label, diags) ->
        if diags <> [] then begin
          Fmt.pr "== %s ==@." label;
          print_string (Diagnostic.render diags)
        end)
      groups;
    if all = [] then Fmt.pr "analyze: no diagnostics@."
    else
      Fmt.pr "analyze: %d diagnostic(s), %d error(s) total@."
        (List.length all)
        (List.length (Diagnostic.errors all))
  end;
  if Diagnostic.has_errors all then exit 1

let analyze dataset clauses_file clause_str sources rules json backends out seed
    =
  (* analysis is deterministic and reads no stored coverage data: the
     seed and backend are validated then ignored, accepted only so
     sweep scripts can pass one uniform flag set across subcommands *)
  ignore (seed : int);
  ignore (one_backend "analyze" backends);
  if rules then print_rule_catalog ()
  else if sources <> [] then begin
    (* OCaml-source lints run standalone: no dataset context needed.
       All files go to the AST engine in one call, so cross-module
       rules (worker closures reaching another module's globals) see
       the whole set. *)
    let groups =
      Analyze.sources (List.map (fun f -> (f, read_file f)) sources)
    in
    emit_diagnostics groups json out
  end
  else begin
    let ds = dataset_of_name dataset in
    let groups =
      match (clauses_file, clause_str) with
      | None, None ->
          (* mirror the experiment defaults so the saturation-budget
             estimate reflects what `learn` would actually run *)
          let budget =
            {
              Castor_analysis.Modes.depth = 2;
              max_terms = Some 60;
              per_relation_cap = 10;
              max_steps = 40_000;
            }
          in
          Analyze.dataset_checks ~budget ~base:ds.Dataset.schema
            ~variants:ds.Dataset.variants ~target:ds.Dataset.target
            ~const_pool_domains:(List.map fst ds.Dataset.const_pool)
            ~no_expand_domains:ds.Dataset.no_expand_domains ()
      | file, inline ->
          let texts =
            Option.to_list (Option.map (fun f -> (f, read_file f)) file)
            @ Option.to_list (Option.map (fun s -> ("<clause>", s)) inline)
          in
          List.map
            (fun (label, text) ->
              ( label,
                Analyze.clauses_text ~schema:ds.Dataset.schema
                  ~target:ds.Dataset.target text ))
            texts
    in
    emit_diagnostics groups json out
  end

let analyze_cmd =
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Run the static-analysis pass: schema, transformation and \
          inferred-mode lints over a dataset, or clause lints over a file or \
          inline clause. Exits nonzero when errors are found.")
    Term.(
      const analyze $ dataset_arg
      $ Arg.(
          value
          & opt (some string) None
          & info [ "clauses" ] ~doc:"Lint the clauses in $(docv)." ~docv:"FILE")
      $ Arg.(
          value
          & opt (some string) None
          & info [ "clause" ] ~doc:"Lint one inline clause string.")
      $ Arg.(
          value & opt_all string []
          & info [ "source" ]
              ~doc:
                "Lint an OCaml source $(docv) for direct Instance/Store \
                 lookups that bypass the Backend seam (repeatable)."
              ~docv:"FILE")
      $ Arg.(value & flag & info [ "rules" ] ~doc:"Print the rule catalog and exit.")
      $ json_arg $ backends_arg $ out_arg $ seed_arg)

(* ----------------------------- fuzz ------------------------------ *)

let fuzz dataset seed budget max_depth learners backends no_induce no_shrink
    json out expect =
  let module Fuzz = Castor_fuzz.Fuzz in
  let module Sweep = Castor_fuzz.Sweep in
  let module Shrink = Castor_fuzz.Shrink in
  let ds = dataset_of_name dataset in
  let learners =
    match learners with
    | [] -> Learner.names ()
    | ls ->
        List.iter (fun l -> ignore (algo_of_name l)) ls;
        ls
  in
  let backends =
    match backends with
    | [] -> [ None ]
    | bs -> List.map (fun b -> Some (backend_of_string b)) bs
  in
  let config =
    {
      Fuzz.seed;
      budget;
      max_depth;
      learners;
      backends;
      induce = not no_induce;
      shrink = not no_shrink;
    }
  in
  let report = Fuzz.run ~config ds in
  let doc = Fuzz.report_to_json report in
  write_out out doc;
  if json then print_endline doc
  else begin
    Fmt.pr "fuzz %s: seed %d, %d generated variant(s)@." dataset seed
      (List.length report.Fuzz.rp_variants);
    Option.iter
      (fun b -> Fmt.pr "induced bias: %a@." Castor_fuzz.Bias.pp b)
      report.Fuzz.rp_bias;
    List.iter
      (fun (name, ops) -> Fmt.pr "  %s: %a@." name Transform.pp ops)
      report.Fuzz.rp_variants;
    List.iter
      (fun (v : Sweep.verdict) ->
        Fmt.pr "%s [%s]: %s@." v.Sweep.v_learner v.Sweep.v_backend
          (if v.Sweep.v_equivalent then "data-equivalent on all variants"
           else "DIVERGES on " ^ String.concat ", " v.Sweep.v_diverging))
      report.Fuzz.rp_verdicts;
    List.iter
      (fun cx -> Fmt.pr "@.%a@." Shrink.pp_counterexample cx)
      report.Fuzz.rp_counterexamples
  end;
  let broken =
    List.filter (fun l -> not (Fuzz.independent report ~learner:l)) expect
  in
  if report.Fuzz.rp_backend_mismatches <> [] then begin
    Fmt.epr "backend changes learner output: %s@."
      (String.concat ", "
         (List.map
            (fun (l, v) -> l ^ "/" ^ v)
            report.Fuzz.rp_backend_mismatches));
    exit 1
  end;
  if report.Fuzz.rp_planner_divergences <> [] then begin
    Fmt.epr "planner strategies disagree in result (kernel vs subsumption): %s@."
      (String.concat ", "
         (List.map
            (fun (v, c) -> v ^ ": " ^ c)
            report.Fuzz.rp_planner_divergences));
    exit 1
  end;
  if broken <> [] then begin
    Fmt.epr "schema independence violated for: %s@." (String.concat ", " broken);
    exit 1
  end

let fuzz_cmd =
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Zero-config schema-variant fuzzing: induce the language bias from \
          the raw data, generate a seeded family of valid schema variants, \
          sweep learners across variants and backends, and shrink any \
          schema-independence failure to a minimal counterexample. Exits \
          nonzero when an expected-independent learner diverges.")
    Term.(
      const fuzz $ dataset_arg $ seed_arg
      $ Arg.(
          value & opt int 8
          & info [ "budget" ] ~doc:"Maximum number of generated variants.")
      $ Arg.(
          value & opt int 2
          & info [ "max-depth" ] ~doc:"Maximum chained transformations per variant.")
      $ Arg.(
          value & opt_all string []
          & info [ "a"; "algo" ]
              ~doc:"Learner to sweep (repeatable; default: every registered learner).")
      $ backends_arg
      $ Arg.(
          value & flag
          & info [ "no-induce" ]
              ~doc:"Keep the dataset's hand-written bias instead of re-inducing it.")
      $ Arg.(value & flag & info [ "no-shrink" ] ~doc:"Skip counterexample shrinking.")
      $ json_arg $ out_arg
      $ Arg.(
          value
          & opt_all string [ "castor" ]
          & info [ "expect-independent" ]
              ~doc:
                "Learner that must be schema independent (repeatable); a \
                 divergence makes the command fail."))

(* ----------------------------------------------------------------- *)

let () =
  let doc = "Schema independent relational learning (Castor)" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "castor" ~doc)
          [
            learn_cmd; schemas_cmd; transform_cmd; oracle_cmd; export_cmd;
            import_cmd; sql_cmd; discover_cmd; stats_cmd; analyze_cmd; fuzz_cmd;
          ]))
